/**
 * @file
 * Out-of-order superscalar timing core.
 *
 * The core replays a dynamic instruction trace through an
 * R10000-style pipeline model: width-limited in-order fetch/rename/
 * commit, renaming against per-class physical register free lists,
 * windowed issue queue, out-of-order issue to functional-unit pools, a
 * gshare branch predictor with a fixed redirect penalty, address-based
 * store->load disambiguation, and the two-level memory system with the
 * vector-cache path.
 *
 * Vector (matrix) instructions occupy a vector unit for
 * ceil(vl / lanesPerFu) cycles; in-register transposes occupy the lane
 * exchange network for vl cycles.
 *
 * The model is a single in-program-order pass that resolves each
 * instruction's fetch/rename/issue/complete/commit cycles against the
 * reservations made by older instructions -- equivalent to a cycle-driven
 * model for this machine (no speculation past unresolved branches is
 * modelled other than through the redirect penalty).
 *
 * All mutable per-run state lives in a SimContext (sim/sim_context.hh);
 * OoOCore is the single-configuration convenience wrapper around it.
 * To replay one trace on many configurations at once -- one decode, one
 * pass over trace memory -- use runBatch() with one SimContext per
 * configuration, or the harness-level runTraceBatch().
 */

#ifndef VMMX_SIM_CORE_HH
#define VMMX_SIM_CORE_HH

#include <vector>

#include "isa/inst.hh"
#include "mem/memsys.hh"
#include "sim/params.hh"
#include "sim/runstats.hh"
#include "sim/sim_context.hh"

namespace vmmx
{

class OoOCore
{
  public:
    /** @param mem the memory system; not owned. */
    OoOCore(const CoreParams &params, MemorySystem *mem)
        : ctx_(params, mem)
    {
    }

    /** Replay @p trace from a cold pipeline; cache state persists across
     *  calls unless the memory system is reset. */
    RunStats run(const std::vector<InstRecord> &trace)
    {
        SimContext *const ctxs[] = {&ctx_};
        runBatch(trace, ctxs);
        return ctx_.finish();
    }

    const CoreParams &params() const { return ctx_.params(); }

  private:
    SimContext ctx_;
};

} // namespace vmmx

#endif // VMMX_SIM_CORE_HH
