/**
 * @file
 * Out-of-order superscalar timing core.
 *
 * The core replays a dynamic instruction trace through an
 * R10000-style pipeline model: width-limited in-order fetch/rename/
 * commit, renaming against per-class physical register free lists,
 * windowed issue queue, out-of-order issue to functional-unit pools, a
 * gshare branch predictor with a fixed redirect penalty, address-based
 * store->load disambiguation, and the two-level memory system with the
 * vector-cache path.
 *
 * Vector (matrix) instructions occupy a vector unit for
 * ceil(vl / lanesPerFu) cycles; in-register transposes occupy the lane
 * exchange network for vl cycles.
 *
 * The model is a single in-program-order pass that resolves each
 * instruction's fetch/rename/issue/complete/commit cycles against the
 * reservations made by older instructions -- equivalent to a cycle-driven
 * model for this machine (no speculation past unresolved branches is
 * modelled other than through the redirect penalty).
 */

#ifndef VMMX_SIM_CORE_HH
#define VMMX_SIM_CORE_HH

#include <memory>
#include <vector>

#include "isa/inst.hh"
#include "mem/memsys.hh"
#include "sim/bpred.hh"
#include "sim/params.hh"
#include "sim/resources.hh"
#include "sim/runstats.hh"

namespace vmmx
{

class OoOCore
{
  public:
    /** @param mem the memory system; not owned. */
    OoOCore(const CoreParams &params, MemorySystem *mem);

    /** Replay @p trace from a cold pipeline; cache state persists across
     *  calls unless the memory system is reset. */
    RunStats run(const std::vector<InstRecord> &trace);

    const CoreParams &params() const { return params_; }

  private:
    /** Process one instruction; updates all resource state. */
    void step(const InstRecord &inst);

    Cycle memoryTime(const InstRecord &inst, Cycle issue);

    CoreParams params_;
    MemorySystem *mem_;

    WidthGate fetchGate_;
    WidthGate renameGate_;
    WidthGate commitGate_;
    IssueQueueModel iq_;
    SlotPool intPool_;
    SlotPool fpPool_;
    SlotPool simdPool_;
    SlotPool simdIssuePool_;
    BranchPredictor bpred_;

    std::vector<RegFreeList> freeLists_;
    /** regReady_[class][logical] = cycle the latest writer's value is
     *  available. */
    std::vector<std::vector<Cycle>> regReady_;

    /** Commit-cycle ring for the ROB-occupancy constraint. */
    std::vector<Cycle> robRing_;
    u64 seq_ = 0;
    Cycle lastCommit_ = 0;
    Cycle fetchRedirect_ = 0;

    struct PendingStore
    {
        Addr lo;
        Addr hi;
        Cycle done;
    };

    /**
     * The last storeWindow stores, kept in a fixed ring (the newest
     * overwrites the oldest, matching the deque this replaced).  The
     * interval and completion-time bounds over the live entries let the
     * per-load disambiguation walk be skipped outright when no pending
     * store can overlap or is still in flight; they are conservative
     * (never under-approximate) and are tightened on every full walk.
     */
    std::vector<PendingStore> stores_;
    size_t storeHead_ = 0;
    Cycle storesMaxDone_ = 0;
    Addr storesLoMin_ = ~Addr(0);
    Addr storesHiMax_ = 0;

    void pushStore(Addr lo, Addr hi, Cycle done);
    /** @return the load's issue cycle after waiting for overlapping
     *  older stores still in flight at @p issue. */
    Cycle disambiguate(Addr lo, Addr hi, Cycle issue);
    void resetStores();

    RunStats stats_;
};

} // namespace vmmx

#endif // VMMX_SIM_CORE_HH
