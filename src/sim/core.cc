#include "sim/core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vmmx
{

namespace
{

size_t
regClassIdx(RegClass c)
{
    return static_cast<size_t>(c);
}

} // namespace

OoOCore::OoOCore(const CoreParams &params, MemorySystem *mem)
    : params_(params),
      mem_(mem),
      fetchGate_(params.way),
      renameGate_(params.way),
      commitGate_(params.way),
      iq_(params.iqSize),
      intPool_(params.intFus),
      fpPool_(params.fpFus),
      simdPool_(params.simdFus),
      simdIssuePool_(params.simdIssue),
      bpred_(params.bpredEntries),
      robRing_(params.robSize, 0)
{
    vmmx_assert(mem_ != nullptr, "core needs a memory system");
    stores_.reserve(params.storeWindow);

    freeLists_.reserve(numRegClasses);
    freeLists_.emplace_back(params.physInt, params.logicalInt);
    freeLists_.emplace_back(params.physFp, params.logicalFp);
    freeLists_.emplace_back(params.physSimd, params.logicalSimd);
    freeLists_.emplace_back(params.physAcc, params.logicalAcc);

    regReady_.resize(numRegClasses);
    regReady_[regClassIdx(RegClass::Int)].assign(64, 0);
    regReady_[regClassIdx(RegClass::Fp)].assign(64, 0);
    regReady_[regClassIdx(RegClass::Simd)].assign(64, 0);
    regReady_[regClassIdx(RegClass::Acc)].assign(8, 0);
}

void
OoOCore::pushStore(Addr lo, Addr hi, Cycle done)
{
    if (params_.storeWindow == 0)
        return;
    if (stores_.size() < params_.storeWindow) {
        stores_.push_back({lo, hi, done});
    } else {
        stores_[storeHead_] = {lo, hi, done};
        storeHead_ = (storeHead_ + 1) % stores_.size();
    }
    storesMaxDone_ = std::max(storesMaxDone_, done);
    storesLoMin_ = std::min(storesLoMin_, lo);
    storesHiMax_ = std::max(storesHiMax_, hi);
}

Cycle
OoOCore::disambiguate(Addr lo, Addr hi, Cycle issue)
{
    // The bounds over-approximate the live window, so a miss here proves
    // no overlapping store is still in flight.
    if (stores_.empty() || issue >= storesMaxDone_ ||
        hi <= storesLoMin_ || lo >= storesHiMax_) {
        return issue;
    }

    // The final issue cycle is max(issue, done of overlapping in-flight
    // stores) -- order independent, so the ring is walked linearly while
    // the bounds are re-tightened to the exact live set.
    Cycle maxDone = 0;
    Addr loMin = ~Addr(0);
    Addr hiMax = 0;
    for (const PendingStore &st : stores_) {
        if (st.done > issue && st.lo < hi && lo < st.hi)
            issue = st.done;
        maxDone = std::max(maxDone, st.done);
        loMin = std::min(loMin, st.lo);
        hiMax = std::max(hiMax, st.hi);
    }
    storesMaxDone_ = maxDone;
    storesLoMin_ = loMin;
    storesHiMax_ = hiMax;
    return issue;
}

void
OoOCore::resetStores()
{
    stores_.clear();
    storeHead_ = 0;
    storesMaxDone_ = 0;
    storesLoMin_ = ~Addr(0);
    storesHiMax_ = 0;
}

Cycle
OoOCore::memoryTime(const InstRecord &inst, Cycle issue)
{
    bool isWrite = inst.isStore();
    if (inst.op == Opcode::VLOAD || inst.op == Opcode::VSTORE ||
        inst.op == Opcode::VLOADP || inst.op == Opcode::VSTOREP) {
        return mem_->vectorAccess(inst.addr, inst.rowBytes, inst.stride,
                                  inst.rows(), isWrite, issue);
    }
    return mem_->scalarAccess(inst.addr, inst.rowBytes, isWrite, issue);
}

void
OoOCore::step(const InstRecord &inst)
{
    const OpTraits &info = inst.info();

    // ---- fetch ----
    Cycle fetch = fetchGate_.pass(std::max(fetchRedirect_, Cycle(0)));

    // ---- rename / dispatch ----
    Cycle rn = fetch + params_.frontDepth;

    // ROB space: the instruction robSize places earlier must have
    // committed.
    Cycle robFree = robRing_[seq_ % params_.robSize];
    if (robFree + 1 > rn) {
        rn = robFree + 1;
        ++stats_.renameStallRob;
    }

    // Issue-queue space (VSETVL folds into rename and takes no entry).
    bool takesIq = info.fu != FuType::None;
    if (takesIq) {
        Cycle iqReady = iq_.waitForSpace(rn);
        if (iqReady > rn) {
            rn = iqReady;
            ++stats_.renameStallIq;
        }
    }

    // Physical destination register.
    if (inst.dst.valid()) {
        RegFreeList &fl = freeLists_[regClassIdx(inst.dst.cls)];
        Cycle regReady = fl.allocate(rn);
        if (regReady > rn) {
            rn = regReady;
            ++stats_.renameStallRegs;
        }
    }

    rn = renameGate_.pass(rn);

    // ---- operand readiness ----
    Cycle ready = rn + 1;
    for (const RegId *src : {&inst.src0, &inst.src1, &inst.src2}) {
        if (!src->valid())
            continue;
        const auto &table = regReady_[regClassIdx(src->cls)];
        vmmx_assert(src->idx < table.size(), "logical register out of range");
        ready = std::max(ready, table[src->idx]);
    }
    // Accumulating and partial-write ops read their destination too.
    bool readsDst =
        inst.dst.valid() &&
        ((inst.dst.cls == RegClass::Acc && inst.op != Opcode::VACCCLR) ||
         inst.op == Opcode::VLOADP || inst.op == Opcode::VACCPACK);
    if (readsDst) {
        ready = std::max(
            ready, regReady_[regClassIdx(inst.dst.cls)][inst.dst.idx]);
    }

    // ---- issue and execute ----
    Cycle done;
    Cycle issue = ready;
    switch (info.fu) {
      case FuType::IntAlu:
        issue = intPool_.acquire(ready);
        done = issue + info.latency;
        break;
      case FuType::IntMul:
        issue = intPool_.acquire(ready, info.latency > 4 ? info.latency : 1);
        done = issue + info.latency;
        break;
      case FuType::Fp:
        issue = fpPool_.acquire(ready);
        done = issue + info.latency;
        break;
      case FuType::Simd: {
        // Vector instructions stream vl rows through lanesPerFu lanes.
        Cycle occ = 1;
        if (inst.vl > 0) {
            if (inst.op == Opcode::VTRANSP)
                occ = inst.vl; // lane-exchange network
            else
                occ = (inst.vl + params_.lanesPerFu - 1) / params_.lanesPerFu;
        }
        issue = simdIssuePool_.acquire(ready);
        issue = simdPool_.acquire(issue, occ);
        done = issue + occ - 1 + info.latency;
        break;
      }
      case FuType::Mem: {
        // Footprint [lo, hi) of the access, covering all strided rows.
        Addr lo = inst.addr;
        Addr hi = inst.addr;
        if (inst.vl > 0 && inst.stride != 0) {
            s64 span = s64(inst.stride) * (inst.rows() - 1);
            if (span < 0)
                lo = Addr(s64(lo) + span);
            else
                hi = Addr(s64(hi) + span);
        }
        hi += inst.rowBytes;

        issue = ready;
        if (inst.isLoad()) {
            // Wait for older overlapping stores still in flight.
            issue = disambiguate(lo, hi, issue);
        }
        done = memoryTime(inst, issue);
        if (inst.isStore())
            pushStore(lo, hi, done);
        ++stats_.memOps;
        break;
      }
      case FuType::None:
        issue = rn + 1;
        done = issue;
        break;
      default:
        panic("unknown FU type");
    }

    if (takesIq)
        iq_.insert(issue);

    // ---- writeback ----
    if (inst.dst.valid()) {
        auto &table = regReady_[regClassIdx(inst.dst.cls)];
        vmmx_assert(inst.dst.idx < table.size(),
                    "logical register out of range");
        table[inst.dst.idx] = done;
    }

    // ---- branch resolution ----
    if (inst.isBranch()) {
        ++stats_.branches;
        bool correct = inst.op == Opcode::BR
                           ? bpred_.predict(inst.staticId, inst.taken)
                           : true; // J/CALL/RET: target known (RAS)
        if (!correct) {
            ++stats_.mispredicts;
            fetchRedirect_ =
                std::max(fetchRedirect_, done + params_.mispredictPenalty);
        }
    }

    // ---- commit (in order) ----
    Cycle cc = std::max(done + 1, lastCommit_);
    cc = commitGate_.pass(cc);

    // Cycle attribution: the interval (lastCommit_, cc] belongs to the
    // region of the committing instruction.
    Cycle delta = cc > lastCommit_ ? cc - lastCommit_ : 0;
    if (inst.region != 0)
        stats_.vectorCycles += delta;
    else
        stats_.scalarCycles += delta;
    lastCommit_ = cc;

    // Free the previous mapping of the destination's logical register.
    if (inst.dst.valid())
        freeLists_[regClassIdx(inst.dst.cls)].release(cc);

    robRing_[seq_ % params_.robSize] = cc;
    ++seq_;

    ++stats_.instructions;
    ++stats_.instByClass[static_cast<size_t>(info.cls)];
}

RunStats
OoOCore::run(const std::vector<InstRecord> &trace)
{
    stats_ = RunStats{};
    fetchGate_.reset();
    renameGate_.reset();
    commitGate_.reset();
    iq_.reset();
    intPool_.reset();
    fpPool_.reset();
    simdPool_.reset();
    simdIssuePool_.reset();
    bpred_.reset();
    for (auto &fl : freeLists_)
        fl.reset();
    for (auto &table : regReady_)
        std::fill(table.begin(), table.end(), 0);
    std::fill(robRing_.begin(), robRing_.end(), 0);
    resetStores();
    seq_ = 0;
    lastCommit_ = 0;
    fetchRedirect_ = 0;

    for (const InstRecord &inst : trace)
        step(inst);

    stats_.cycles = lastCommit_;
    return stats_;
}

} // namespace vmmx
