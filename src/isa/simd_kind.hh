/**
 * @file
 * The four SIMD extension flavours under study and their architectural
 * geometry (register width, vector length, logical register counts).
 *
 * MMX64   -- 1-D, 64-bit packed registers (baseline, Intel MMX-like).
 * MMX128  -- 1-D, 128-bit packed registers (Intel SSE2-like).
 * VMMX64  -- 2-D (MOM), 16 rows x 64-bit packed words per register.
 * VMMX128 -- 2-D (MOM), 16 rows x 128-bit packed words per register.
 */

#ifndef VMMX_ISA_SIMD_KIND_HH
#define VMMX_ISA_SIMD_KIND_HH

#include <array>
#include <string>

#include "common/types.hh"

namespace vmmx
{

enum class SimdKind : u8 { MMX64 = 0, MMX128, VMMX64, VMMX128 };

constexpr std::array<SimdKind, 4> allSimdKinds = {
    SimdKind::MMX64, SimdKind::MMX128, SimdKind::VMMX64, SimdKind::VMMX128,
};

/** Architectural geometry of one SIMD flavour. */
struct SimdGeometry
{
    /** Width in bits of one packed word (a register row). */
    unsigned rowBits;
    /** Rows per register: 1 for the 1-D extensions, 16 for MOM. */
    unsigned maxVl;
    /** Number of logical SIMD registers (Table III). */
    unsigned logicalRegs;
    /** True for the matrix (MOM) flavours. */
    bool matrix;
};

/** @return the geometry of @p kind (Table III / section II). */
const SimdGeometry &geometry(SimdKind kind);

/** Lower-case name as used in the paper's figures ("mmx64", ...). */
const std::string &name(SimdKind kind);

/** Parse a kind name; fatal on unknown names. */
SimdKind parseSimdKind(const std::string &name);

/** Row width in bytes (8 or 16). */
inline unsigned
rowBytes(SimdKind kind)
{
    return geometry(kind).rowBits / 8;
}

inline bool
isMatrix(SimdKind kind)
{
    return geometry(kind).matrix;
}

} // namespace vmmx

#endif // VMMX_ISA_SIMD_KIND_HH
