#include "isa/inst.hh"

#include <cstdio>

namespace vmmx
{

namespace
{

const char *
regClassTag(RegClass c)
{
    switch (c) {
      case RegClass::Int: return "r";
      case RegClass::Fp: return "f";
      case RegClass::Simd: return "v";
      case RegClass::Acc: return "a";
      case RegClass::None: return "-";
    }
    return "?";
}

std::string
regStr(const RegId &r)
{
    if (!r.valid())
        return "-";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%s%u", regClassTag(r.cls), r.idx);
    return buf;
}

} // namespace

std::string
InstRecord::toString() const
{
    char buf[160];
    if (isMem()) {
        std::snprintf(buf, sizeof(buf),
                      "%-8s %s <- [0x%llx row=%u stride=%d vl=%u] %s",
                      opcodeName(op), regStr(dst).c_str(),
                      static_cast<unsigned long long>(addr), rowBytes, stride, vl,
                      regStr(src0).c_str());
    } else if (isBranch()) {
        std::snprintf(buf, sizeof(buf), "%-8s %s,%s %s (site %u)",
                      opcodeName(op), regStr(src0).c_str(),
                      regStr(src1).c_str(), taken ? "T" : "N", staticId);
    } else {
        std::snprintf(buf, sizeof(buf), "%-8s %s <- %s,%s,%s vl=%u",
                      opcodeName(op), regStr(dst).c_str(),
                      regStr(src0).c_str(), regStr(src1).c_str(),
                      regStr(src2).c_str(), vl);
    }
    return buf;
}

} // namespace vmmx
