/**
 * @file
 * Opcode set of the modelled machine: a MIPS/Alpha-like scalar core plus
 * the packed-SIMD operation repertoire shared by the 1-D (MMX-style) and
 * 2-D (MOM-style) extensions.
 *
 * The timing simulator is trace driven: functional semantics live in the
 * emulation library (src/emu) and are applied while the trace is built, so
 * opcodes here carry only what timing and statistics need -- instruction
 * class, functional-unit type, latency and a printable name.
 *
 * Packed opcodes are element-width agnostic; the InstRecord carries an
 * ElemWidth.  1-D and 2-D flavours share packed opcodes: a record with
 * vl == 0 is a single-word (1-D) operation, vl >= 1 is a matrix operation
 * over that many register rows.
 */

#ifndef VMMX_ISA_OPCODE_HH
#define VMMX_ISA_OPCODE_HH

#include "common/types.hh"

namespace vmmx
{

/** Dynamic-instruction classes as used in the paper's Figure 7. */
enum class InstClass : u8
{
    SMEM,   ///< scalar memory
    SARITH, ///< scalar arithmetic (incl. FP)
    SCTRL,  ///< control (branches, jumps, calls)
    VMEM,   ///< SIMD/vector memory
    VARITH, ///< SIMD/vector arithmetic
};

constexpr unsigned numInstClasses = 5;

const char *instClassName(InstClass c);

/** Functional-unit families (Table III resources). */
enum class FuType : u8
{
    IntAlu,
    IntMul,
    Fp,
    Simd,   ///< SIMD/vector execution unit
    Mem,    ///< address generation + cache port
    None,   ///< zero-latency bookkeeping (e.g. setvl folds into rename)
};

/** Packed element width. */
enum class ElemWidth : u8 { B8 = 0, W16, D32, Q64 };

/** @return element size in bytes. */
inline unsigned
elemBytes(ElemWidth w)
{
    return 1u << static_cast<unsigned>(w);
}

enum class Opcode : u8
{
    // ---- scalar integer ----
    NOP,
    LI,    ///< load immediate
    MOV,
    ADD,
    SUB,
    MUL,
    DIV,
    AND,
    OR,
    XOR,
    SLL,
    SRL,
    SRA,
    SLT,
    // ---- scalar floating point ----
    FADD,
    FMUL,
    FDIV,
    // ---- scalar memory ----
    LOAD,  ///< 1/2/4/8-byte scalar load (size in record)
    STORE,
    // ---- control ----
    BR,    ///< conditional branch (outcome in record)
    JMP,   ///< unconditional jump
    CALL,
    RET,
    // ---- packed SIMD arithmetic (1-D word or 2-D matrix) ----
    PADD,   ///< wrapping packed add
    PADDS,  ///< saturating packed add
    PSUB,
    PSUBS,
    PMULL,  ///< packed multiply, low half
    PMULH,  ///< packed multiply, high half
    PMADD,  ///< pmaddwd-style 16->32 multiply + pairwise add
    PSAD,   ///< sum of absolute differences (u8) -> 64-bit lanes
    PAVG,
    PMIN,
    PMAX,
    PAND,
    POR,
    PXOR,
    PSLL,
    PSRL,
    PSRA,
    PACKS,  ///< narrow with signed saturation
    PACKUS, ///< narrow with unsigned saturation
    UNPCKL, ///< interleave low elements
    UNPCKH, ///< interleave high elements
    PSHUF,  ///< element permute within a word
    PSPLAT, ///< broadcast scalar into all elements
    PMOVD,  ///< move scalar reg <-> SIMD element 0
    PSUM,   ///< horizontal reduce of one packed word -> scalar reg
    // ---- matrix-only (MOM) operations ----
    VSETVL,  ///< set vector length (folds into decode; FuType::None)
    VMACC,   ///< packed multiply-accumulate into a wide accumulator
    VSADA,   ///< SAD of two matrix rows accumulated into accumulator
    VADDA,   ///< packed add of rows into accumulator columns
    VACCSUM, ///< reduce an accumulator to a scalar register
    VACCCLR, ///< clear accumulator
    VACCPACK,///< pack/saturate an accumulator back into a matrix register
    VTRANSP, ///< in-register matrix transpose (lane exchange network)
    // ---- memory, packed / matrix ----
    PLOAD,   ///< 1-D packed load (one row)
    PSTORE,
    VLOAD,   ///< matrix load, unit-stride or strided (vl rows)
    VSTORE,
    VLOADP,  ///< partial matrix load (SSE2/SSE3-style partial movement)
    VSTOREP,
    NUM_OPCODES,
};

/** Static properties of an opcode. */
struct OpTraits
{
    InstClass cls;
    FuType fu;
    u8 latency;       ///< execution latency in cycles (post-issue)
    const char *name; ///< mnemonic for disassembly
};

/** @return the traits row for @p op. */
const OpTraits &traits(Opcode op);

inline const char *
opcodeName(Opcode op)
{
    return traits(op).name;
}

} // namespace vmmx

#endif // VMMX_ISA_OPCODE_HH
