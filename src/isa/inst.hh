/**
 * @file
 * Dynamic instruction record -- the unit the trace DSL emits and the
 * timing simulator consumes.
 */

#ifndef VMMX_ISA_INST_HH
#define VMMX_ISA_INST_HH

#include <string>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace vmmx
{

/** Register classes renamed independently by the core. */
enum class RegClass : u8
{
    Int,  ///< scalar integer
    Fp,   ///< scalar floating point
    Simd, ///< packed / matrix registers
    Acc,  ///< MOM packed accumulators
    None, ///< no register
};

constexpr unsigned numRegClasses = 4;

/** A logical register identifier. */
struct RegId
{
    RegClass cls = RegClass::None;
    u8 idx = 0;

    bool valid() const { return cls != RegClass::None; }
    bool operator==(const RegId &o) const = default;
};

inline RegId intReg(u8 i) { return {RegClass::Int, i}; }
inline RegId fpReg(u8 i) { return {RegClass::Fp, i}; }
inline RegId simdReg(u8 i) { return {RegClass::Simd, i}; }
inline RegId accReg(u8 i) { return {RegClass::Acc, i}; }
inline RegId noReg() { return {}; }

/**
 * One dynamic instruction.
 *
 * Memory operations carry their resolved effective address (the trace is
 * execution driven, so addresses and branch outcomes are exact).  Matrix
 * operations carry the active vector length in rows and, for memory, the
 * byte stride between consecutive rows.
 */
struct InstRecord
{
    Opcode op = Opcode::NOP;
    ElemWidth ew = ElemWidth::B8;

    RegId dst;
    RegId src0;
    RegId src1;
    RegId src2;

    /** Memory: resolved effective address of the first byte. */
    Addr addr = 0;
    /** Memory: bytes per row (scalar access size, or packed row size). */
    u16 rowBytes = 0;
    /** Memory: byte stride between rows; == rowBytes when unit-stride. */
    s32 stride = 0;
    /** Vector length in rows; 0 for scalar and 1-D SIMD operations. */
    u16 vl = 0;

    /** Branches: resolved direction. */
    bool taken = false;
    /** Static instruction site (for the branch predictor / footprint). */
    u32 staticId = 0;
    /** Region tag: 0 = scalar code, nonzero = vectorised kernel region. */
    u16 region = 0;

    const OpTraits &info() const { return traits(op); }
    InstClass cls() const { return info().cls; }
    bool isMem() const { return info().fu == FuType::Mem; }
    bool isLoad() const
    {
        return op == Opcode::LOAD || op == Opcode::PLOAD ||
               op == Opcode::VLOAD || op == Opcode::VLOADP;
    }
    bool isStore() const
    {
        return op == Opcode::STORE || op == Opcode::PSTORE ||
               op == Opcode::VSTORE || op == Opcode::VSTOREP;
    }
    bool isBranch() const { return cls() == InstClass::SCTRL; }
    bool isVector() const
    {
        InstClass c = cls();
        return c == InstClass::VMEM || c == InstClass::VARITH;
    }
    /** Total bytes moved by a memory operation. */
    u32 memBytes() const { return u32(rowBytes) * (vl ? vl : 1); }
    /** Rows processed: vl for matrix ops, 1 otherwise. */
    u16 rows() const { return vl ? vl : 1; }

    /** Bit-exact comparison (serialization round-trip checks). */
    bool operator==(const InstRecord &o) const = default;

    /** Human-readable rendering for debugging. */
    std::string toString() const;
};

} // namespace vmmx

#endif // VMMX_ISA_INST_HH
