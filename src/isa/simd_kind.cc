#include "isa/simd_kind.hh"

#include "common/logging.hh"

namespace vmmx
{

namespace
{

const std::array<SimdGeometry, 4> geometries = {{
    // rowBits, maxVl, logicalRegs, matrix
    {64, 1, 32, false},  // MMX64
    {128, 1, 32, false}, // MMX128
    {64, 16, 16, true},  // VMMX64
    {128, 16, 16, true}, // VMMX128
}};

const std::array<std::string, 4> kindNames = {
    "mmx64", "mmx128", "vmmx64", "vmmx128",
};

} // namespace

const SimdGeometry &
geometry(SimdKind kind)
{
    return geometries[static_cast<size_t>(kind)];
}

const std::string &
name(SimdKind kind)
{
    return kindNames[static_cast<size_t>(kind)];
}

SimdKind
parseSimdKind(const std::string &name)
{
    for (size_t i = 0; i < kindNames.size(); ++i) {
        if (kindNames[i] == name)
            return static_cast<SimdKind>(i);
    }
    fatal("unknown SIMD kind '%s' (want mmx64|mmx128|vmmx64|vmmx128)",
          name.c_str());
}

} // namespace vmmx
