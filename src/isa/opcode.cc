#include "isa/opcode.hh"

#include <array>

#include "common/logging.hh"

namespace vmmx
{

namespace
{

constexpr auto C_SMEM = InstClass::SMEM;
constexpr auto C_SAR = InstClass::SARITH;
constexpr auto C_CTL = InstClass::SCTRL;
constexpr auto C_VMEM = InstClass::VMEM;
constexpr auto C_VAR = InstClass::VARITH;

constexpr auto F_ALU = FuType::IntAlu;
constexpr auto F_MUL = FuType::IntMul;
constexpr auto F_FP = FuType::Fp;
constexpr auto F_SIMD = FuType::Simd;
constexpr auto F_MEM = FuType::Mem;
constexpr auto F_NONE = FuType::None;

const std::array<OpTraits, size_t(Opcode::NUM_OPCODES)> opTable = {{
    // cls     fu      lat  name
    {C_SAR, F_ALU, 1, "nop"},      // NOP
    {C_SAR, F_ALU, 1, "li"},       // LI
    {C_SAR, F_ALU, 1, "mov"},      // MOV
    {C_SAR, F_ALU, 1, "add"},      // ADD
    {C_SAR, F_ALU, 1, "sub"},      // SUB
    {C_SAR, F_MUL, 3, "mul"},      // MUL
    {C_SAR, F_MUL, 12, "div"},     // DIV
    {C_SAR, F_ALU, 1, "and"},      // AND
    {C_SAR, F_ALU, 1, "or"},       // OR
    {C_SAR, F_ALU, 1, "xor"},      // XOR
    {C_SAR, F_ALU, 1, "sll"},      // SLL
    {C_SAR, F_ALU, 1, "srl"},      // SRL
    {C_SAR, F_ALU, 1, "sra"},      // SRA
    {C_SAR, F_ALU, 1, "slt"},      // SLT
    {C_SAR, F_FP, 4, "fadd"},      // FADD
    {C_SAR, F_FP, 4, "fmul"},      // FMUL
    {C_SAR, F_FP, 12, "fdiv"},     // FDIV
    {C_SMEM, F_MEM, 1, "load"},    // LOAD (plus cache time)
    {C_SMEM, F_MEM, 1, "store"},   // STORE
    {C_CTL, F_ALU, 1, "br"},       // BR
    {C_CTL, F_ALU, 1, "jmp"},      // JMP
    {C_CTL, F_ALU, 1, "call"},     // CALL
    {C_CTL, F_ALU, 1, "ret"},      // RET
    {C_VAR, F_SIMD, 1, "padd"},    // PADD
    {C_VAR, F_SIMD, 1, "padds"},   // PADDS
    {C_VAR, F_SIMD, 1, "psub"},    // PSUB
    {C_VAR, F_SIMD, 1, "psubs"},   // PSUBS
    {C_VAR, F_SIMD, 3, "pmull"},   // PMULL
    {C_VAR, F_SIMD, 3, "pmulh"},   // PMULH
    {C_VAR, F_SIMD, 3, "pmadd"},   // PMADD
    {C_VAR, F_SIMD, 3, "psad"},    // PSAD
    {C_VAR, F_SIMD, 1, "pavg"},    // PAVG
    {C_VAR, F_SIMD, 1, "pmin"},    // PMIN
    {C_VAR, F_SIMD, 1, "pmax"},    // PMAX
    {C_VAR, F_SIMD, 1, "pand"},    // PAND
    {C_VAR, F_SIMD, 1, "por"},     // POR
    {C_VAR, F_SIMD, 1, "pxor"},    // PXOR
    {C_VAR, F_SIMD, 1, "psll"},    // PSLL
    {C_VAR, F_SIMD, 1, "psrl"},    // PSRL
    {C_VAR, F_SIMD, 1, "psra"},    // PSRA
    {C_VAR, F_SIMD, 1, "packs"},   // PACKS
    {C_VAR, F_SIMD, 1, "packus"},  // PACKUS
    {C_VAR, F_SIMD, 1, "unpckl"},  // UNPCKL
    {C_VAR, F_SIMD, 1, "unpckh"},  // UNPCKH
    {C_VAR, F_SIMD, 1, "pshuf"},   // PSHUF
    {C_VAR, F_SIMD, 1, "psplat"},  // PSPLAT
    {C_VAR, F_SIMD, 1, "pmovd"},   // PMOVD
    {C_VAR, F_SIMD, 2, "psum"},    // PSUM
    {C_SAR, F_NONE, 0, "vsetvl"},  // VSETVL
    {C_VAR, F_SIMD, 3, "vmacc"},   // VMACC
    {C_VAR, F_SIMD, 3, "vsada"},   // VSADA
    {C_VAR, F_SIMD, 1, "vadda"},   // VADDA
    {C_VAR, F_SIMD, 2, "vaccsum"}, // VACCSUM
    {C_VAR, F_SIMD, 1, "vaccclr"}, // VACCCLR
    {C_VAR, F_SIMD, 1, "vaccpack"},// VACCPACK
    {C_VAR, F_SIMD, 1, "vtransp"}, // VTRANSP (occupancy dominates)
    {C_VMEM, F_MEM, 1, "pload"},   // PLOAD
    {C_VMEM, F_MEM, 1, "pstore"},  // PSTORE
    {C_VMEM, F_MEM, 1, "vload"},   // VLOAD
    {C_VMEM, F_MEM, 1, "vstore"},  // VSTORE
    {C_VMEM, F_MEM, 1, "vloadp"},  // VLOADP
    {C_VMEM, F_MEM, 1, "vstorep"}, // VSTOREP
}};

const char *classNames[numInstClasses] = {
    "smem", "sarith", "sctrl", "vmem", "varith",
};

} // namespace

const OpTraits &
traits(Opcode op)
{
    auto idx = static_cast<size_t>(op);
    vmmx_assert(idx < opTable.size(), "opcode out of range");
    return opTable[idx];
}

const char *
instClassName(InstClass c)
{
    auto idx = static_cast<size_t>(c);
    vmmx_assert(idx < numInstClasses, "inst class out of range");
    return classNames[idx];
}

} // namespace vmmx
