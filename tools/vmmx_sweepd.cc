/**
 * @file
 * vmmx_sweepd -- standalone driver for distributed grid sweeps.
 *
 * Builds a (workload x SIMD flavour x machine width) grid from the
 * command line, shards it across self-exec'd worker processes (the
 * driver re-executes its own binary with "--worker --fd N"), and prints
 * the per-point results plus scheduler and trace-store statistics.
 *
 *   vmmx_sweepd --processes 4 --kernels idct,motion1 --ways 2,4,8
 *   vmmx_sweepd --apps gsmenc --kinds vmmx64,vmmx128 --journal sweep.vmjl
 *
 * --check additionally runs the same grid through the serial in-process
 * sweep and exits nonzero unless every point is bit-identical (the
 * distributed determinism guarantee; this is what CI's distributed
 * smoke job asserts).  An interrupted journaled run resumes: rerun with
 * the same --journal and only the missing points execute.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/telemetry.hh"
#include "dist/driver.hh"
#include "dist/worker.hh"
#include "harness/sweep.hh"
#include "sim/simd_dispatch.hh"

using namespace vmmx;

namespace
{

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream in(s);
    std::string item;
    while (std::getline(in, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::string
selfPath(const char *argv0)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0; // non-procfs fallback; must then be an absolute path
}

[[noreturn]] void
usage(int rc)
{
    std::cout <<
        "usage: vmmx_sweepd [options]\n"
        "  --processes N      worker processes (default 2)\n"
        "  --kernels a,b,...  Table II kernel names\n"
        "  --apps a,b,...     application names\n"
        "  --kinds k,...      SIMD flavours (default all four)\n"
        "  --ways w,...       machine widths (default 2,4,8)\n"
        "  --store DIR        trace store directory\n"
        "                     (default $VMMX_TRACE_STORE or system tmp)\n"
        "  --cache-budget B   per-worker raw-trace RAM budget, e.g. 256M\n"
        "                     (default $VMMX_TRACE_CACHE_BUDGET;\n"
        "                     0 = unlimited)\n"
        "  --decoded-budget B per-worker decoded-stream RAM budget\n"
        "                     (default $VMMX_DECODED_CACHE_BUDGET;\n"
        "                     0 = unlimited)\n"
        "  --journal FILE     crash-resume journal; rerun with the same\n"
        "                     file to resume an interrupted sweep\n"
        "  --journal-sync     fdatasync the journal after every entry so\n"
        "                     it survives a host crash (or set\n"
        "                     VMMX_JOURNAL_SYNC=1)\n"
        "  --max-respawns N   respawns per dead worker slot before it is\n"
        "                     abandoned (default $VMMX_MAX_RESPAWNS or 3)\n"
        "  --unit-timeout-ms N  per-unit wall-clock deadline; a worker\n"
        "                     past it is killed and treated as crashed\n"
        "                     (default $VMMX_UNIT_TIMEOUT_MS or 0 = off)\n"
        "  --max-unit-attempts N  workers one unit may kill before it is\n"
        "                     quarantined instead of retried (default\n"
        "                     $VMMX_MAX_UNIT_ATTEMPTS or 3)\n"
        "  --fault-spec SPEC  deterministic fault injection plan, e.g.\n"
        "                     'kill-after-units=3@worker1,corrupt-frame=7'\n"
        "                     (default $VMMX_FAULT_SPEC; see README\n"
        "                     \"Fault tolerance\" for the grammar)\n"
        "  --simd P           pin the host-SIMD step kernel for batched\n"
        "                     groups (scalar, sse2, avx2, avx512, auto);\n"
        "                     paths the host cpuid does not support are\n"
        "                     rejected.  Equivalent to VMMX_SIMD=P and\n"
        "                     inherited by every worker process.\n"
        "  --no-batch         one point per dispatch instead of batched\n"
        "                     trace groups (or set VMMX_SWEEP_BATCH=0)\n"
        "  --no-decoded       decode per dispatch instead of serving the\n"
        "                     repository's decoded tier (or set\n"
        "                     VMMX_SWEEP_DECODED=0)\n"
        "  --check            verify against the serial in-process sweep\n"
        "  --verbose          keep worker warn()/inform() output\n"
        "  --metrics-json FILE  write the run's metrics registry (repo\n"
        "                     tiers, dist counters, per-unit timing) as\n"
        "                     JSON\n"
        "  --trace-events FILE  write a Chrome trace-event JSON timeline\n"
        "                     (driver + workers) for chrome://tracing or\n"
        "                     ui.perfetto.dev\n"
        "  --progress         rate-limited live progress on stderr\n"
        "  --progress-json FILE  streamed JSONL progress events\n"
        "                     ('-' = stderr)\n"
        "  --help             this text\n";
    std::exit(rc);
}

} // namespace

int
main(int argc, char **argv)
{
    // Worker mode never returns.
    dist::maybeWorkerMain(argc, argv);

    std::vector<std::string> kernels, apps;
    std::vector<SimdKind> kinds(allSimdKinds.begin(), allSimdKinds.end());
    std::vector<unsigned> ways = {2, 4, 8};
    dist::DistOptions dopts;
    bool check = false;
    dopts.quiet = true;
    std::string metricsPath, tracePath, progressJsonPath;
    bool progressStderr = false;

    auto value = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            fatal("option '%s' needs a value", argv[i]);
        return argv[++i];
    };
    auto parseUnsigned = [](const std::string &what, const std::string &s) {
        unsigned v = 0;
        if (!env::parseUnsigned(s.c_str(), v))
            fatal("%s: '%s' is not a number", what.c_str(), s.c_str());
        return v;
    };
    auto parseBudget = [](const std::string &what, const std::string &s) {
        u64 bytes = 0;
        if (!TraceRepository::parseBudget(s.c_str(), bytes))
            fatal("%s: '%s' is not a byte size (try 256M, 2G, 4096)",
                  what.c_str(), s.c_str());
        return bytes;
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--processes")
            dopts.processes = parseUnsigned("--processes", value(i));
        else if (arg == "--kernels")
            kernels = splitList(value(i));
        else if (arg == "--apps")
            apps = splitList(value(i));
        else if (arg == "--kinds") {
            kinds.clear();
            for (const auto &k : splitList(value(i)))
                kinds.push_back(parseSimdKind(k));
        } else if (arg == "--ways") {
            ways.clear();
            for (const auto &w : splitList(value(i)))
                ways.push_back(parseUnsigned("--ways", w));
        } else if (arg == "--store")
            dopts.storeDir = value(i);
        else if (arg == "--cache-budget")
            dopts.cacheBudget = parseBudget("--cache-budget", value(i));
        else if (arg == "--decoded-budget")
            dopts.decodedBudget = parseBudget("--decoded-budget", value(i));
        else if (arg == "--journal")
            dopts.journalPath = value(i);
        else if (arg == "--journal-sync")
            dopts.journalSync = true;
        else if (arg == "--max-respawns")
            dopts.maxRespawns = parseUnsigned("--max-respawns", value(i));
        else if (arg == "--unit-timeout-ms")
            dopts.unitTimeoutMs =
                parseUnsigned("--unit-timeout-ms", value(i));
        else if (arg == "--max-unit-attempts") {
            dopts.maxUnitAttempts =
                parseUnsigned("--max-unit-attempts", value(i));
            if (dopts.maxUnitAttempts == 0)
                fatal("--max-unit-attempts must be >= 1");
        } else if (arg == "--fault-spec") {
            dopts.faultSpec = value(i);
            std::vector<env::FaultAction> plan;
            std::string err;
            if (!env::parseFaultSpec(dopts.faultSpec.c_str(), plan, err))
                fatal("--fault-spec: %s", err.c_str());
        } else if (arg == "--simd") {
            std::string p = value(i);
            simd::Path path{};
            bool isAuto = false;
            if (!simd::parsePath(p, path, isAuto))
                fatal("--simd: '%s' is not scalar|sse2|avx2|avx512|auto",
                      p.c_str());
            if (isAuto) {
                simd::setActivePathAuto();
            } else {
                std::string err = simd::setActivePath(path);
                if (!err.empty())
                    fatal("--simd: %s", err.c_str());
            }
            // Workers are self-exec'd and re-resolve from the
            // environment, so the pin must survive the fork+exec.
            ::setenv("VMMX_SIMD", p.c_str(), 1);
        } else if (arg == "--no-batch")
            dopts.batch = false;
        else if (arg == "--no-decoded")
            dopts.decoded = false;
        else if (arg == "--check")
            check = true;
        else if (arg == "--verbose")
            dopts.quiet = false;
        else if (arg == "--metrics-json")
            metricsPath = value(i);
        else if (arg == "--trace-events")
            tracePath = value(i);
        else if (arg == "--progress")
            progressStderr = true;
        else if (arg == "--progress-json")
            progressJsonPath = value(i);
        else if (arg == "--help")
            usage(0);
        else
            usage(2);
    }
    if (dopts.processes == 0)
        fatal("--processes must be >= 1");
    if (kernels.empty() && apps.empty())
        kernels = {"idct", "motion1", "rgb"};

    Sweep grid;
    grid.addKernelGrid(kernels, kinds, ways);
    grid.addAppGrid(apps, kinds, ways);
    if (grid.size() == 0)
        fatal("empty grid");

    dopts.execPath = selfPath(argv[0]);
    setQuiet(dopts.quiet);

    // Observability wiring.  Telemetry is purely observational (results
    // are bit-identical either way); it turns on when any export asks
    // for it, and the flag rides to every worker in the Setup frame.
    if (!metricsPath.empty() || !tracePath.empty())
        telemetry::setEnabled(true);
    std::FILE *progressFile = nullptr;
    if (!progressJsonPath.empty()) {
        if (progressJsonPath != "-") {
            progressFile = std::fopen(progressJsonPath.c_str(), "w");
            if (!progressFile)
                fatal("cannot open '%s'", progressJsonPath.c_str());
        }
        telemetry::setProgress(telemetry::ProgressMode::Jsonl,
                               progressFile);
    } else if (progressStderr) {
        telemetry::setProgress(telemetry::ProgressMode::Stderr);
    }
    telemetry::Tracer::instance().setProcessName(u64(::getpid()),
                                                 "driver");

    std::cout << "vmmx_sweepd: " << grid.size() << " grid points over "
              << dopts.processes << " worker processes ("
              << (dopts.batch ? "batched trace groups" : "per-point jobs")
              << ", decoded tier "
              << (dopts.decoded ? "on" : "off") << ")\n";
    dist::DistStats stats;
    auto results = dist::runSweep(grid.points(), dopts, &stats);

    TextTable table({"point", "insts", "cycles", "ipc"});
    for (const auto &r : results)
        table.addRow({r.point.label(), std::to_string(r.traceLength),
                      std::to_string(r.cycles()),
                      TextTable::num(r.result.core.ipc())});
    table.print(std::cout);
    std::cout << '\n' << stats.summary() << '\n';

    // Per-worker repository tier stats.  The "dist-" prefix keeps these
    // lines (which legitimately differ run to run) easy to filter when
    // diffing the result table of two runs, as CI does.
    auto budgetStr = [](u64 b) {
        return b ? std::to_string(b) + " B" : std::string("unlimited");
    };
    std::cout << "dist-budgets: raw " << budgetStr(dopts.cacheBudget)
              << ", decoded " << budgetStr(dopts.decodedBudget)
              << " per worker\n";
    for (size_t wi = 0; wi < stats.perWorker.size(); ++wi) {
        const auto &w = stats.perWorker[wi];
        std::cout << "dist-worker " << wi << ": " << w.generations
                  << " generations, " << w.hits << " raw hits, "
                  << w.diskLoads << " disk loads, " << w.decodes
                  << " decodes, " << w.decodedHits << " decoded hits, "
                  << w.bytesResident / 1024 << " KiB raw + "
                  << w.decodedBytes / 1024 << " KiB decoded resident\n";
    }
    // Every spawn's fate (the "dist-" prefix keeps these filterable:
    // respawn ordinals and exit details legitimately differ run to run).
    for (const auto &e : stats.exitCauses)
        std::cout << "dist-exit: slot " << e.slot << " spawn " << e.spawnId
                  << " " << dist::name(e.cause) << " (" << e.detail
                  << ")\n";

    // Exports are written even for runs that then fail the quarantine
    // check below: a failed run's telemetry is the interesting kind.
    if (!metricsPath.empty()) {
        dist::publishMetrics(stats);
        std::ofstream out(metricsPath);
        if (!out)
            fatal("cannot open '%s'", metricsPath.c_str());
        telemetry::Registry::instance().dumpJson(out);
        std::cout << "vmmx_sweepd: metrics written to " << metricsPath
                  << '\n';
    }
    if (!tracePath.empty()) {
        std::ofstream out(tracePath);
        if (!out)
            fatal("cannot open '%s'", tracePath.c_str());
        telemetry::Tracer::instance().writeTraceEvents(out);
        std::cout << "vmmx_sweepd: trace events written to " << tracePath
                  << '\n';
    }
    if (progressFile)
        std::fclose(progressFile);

    // Quarantined points never executed; their rows above are default
    // zeros.  That must not read as success.
    if (!stats.quarantinedPoints.empty()) {
        std::cout << "vmmx_sweepd: FAILED -- "
                  << stats.quarantinedPoints.size()
                  << " grid points quarantined (their units kept killing "
                     "workers)\n";
        return 3;
    }

    if (check) {
        SweepOptions serialOpts;
        serialOpts.threads = 1;
        TraceRepository privateRepo;
        serialOpts.repo = &privateRepo;
        Sweep serial(serialOpts);
        serial.addKernelGrid(kernels, kinds, ways);
        serial.addAppGrid(apps, kinds, ways);
        auto expect = serial.runSerial();

        size_t mismatches = 0;
        for (size_t i = 0; i < expect.size(); ++i) {
            if (!results[i].sameRun(expect[i])) {
                std::cout << "MISMATCH at " << expect[i].point.label()
                          << '\n';
                ++mismatches;
            }
        }
        std::cout << "check vs serial in-process sweep: "
                  << (mismatches ? "FAIL" : "bit-identical") << '\n';
        if (mismatches)
            return 1;
    }
    return 0;
}
