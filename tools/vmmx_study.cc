/**
 * @file
 * vmmx_study -- run a declarative experiment spec and print its report.
 *
 * Loads a StudySpec from a text file (see specs/ for checked-in
 * examples and README "Studies" for the format), expands the grid,
 * executes it through the backend the spec's [exec] section names --
 * serial, in-process threads, or sharded worker processes -- and
 * renders the [report] section's derived-metric tables.  Figures are
 * reproducible from a checked-in spec instead of a bespoke binary:
 *
 *   vmmx_study specs/fig5.study
 *   vmmx_study --backend processes --processes 4 specs/fig5.study
 *   vmmx_study --report-only specs/fig5.study   # tables only (CI diffs)
 *
 * --check reruns the grid through the SerialExecutor and exits nonzero
 * unless every point is bit-identical -- the backend-equivalence
 * guarantee of harness/executor.hh, asserted here on real specs.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include <unistd.h>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/telemetry.hh"
#include "dist/driver.hh"
#include "dist/worker.hh"
#include "harness/study.hh"
#include "sim/simd_dispatch.hh"
#include "trace/trace_repo.hh"

using namespace vmmx;

namespace
{

std::string
selfPath(const char *argv0)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0; // non-procfs fallback; must then be an absolute path
}

[[noreturn]] void
usage(int rc)
{
    std::cout <<
        "usage: vmmx_study [options] SPEC.study\n"
        "  --backend B     override the spec's execution backend\n"
        "                  (serial, threads, processes)\n"
        "  --threads N     override the spec's thread count\n"
        "  --processes N   override the spec's worker-process count\n"
        "  --max-respawns N      override the spec's per-slot worker\n"
        "                  respawn budget (processes backend)\n"
        "  --unit-timeout-ms N   override the spec's per-unit deadline\n"
        "                  (processes backend; 0 = no deadline)\n"
        "  --max-unit-attempts N override how many workers one unit may\n"
        "                  kill before quarantine (processes backend)\n"
        "  --simd P        pin the host-SIMD step kernel for batched\n"
        "                  groups (scalar, sse2, avx2, avx512, auto);\n"
        "                  paths the host cpuid does not support are\n"
        "                  rejected.  Equivalent to VMMX_SIMD=P.\n"
        "  --report-only   print only the report tables (no title or\n"
        "                  timing lines; what CI diffs against benches)\n"
        "  --dump-spec     print the canonical spec text and exit\n"
        "  --check         also run the serial reference executor and\n"
        "                  exit nonzero unless bit-identical\n"
        "  --verbose       keep warn()/inform() output\n"
        "  --metrics-json FILE  write the run's metrics registry (repo\n"
        "                  tiers, dist counters, per-unit timing) as JSON\n"
        "  --trace-events FILE  write a Chrome trace-event JSON timeline\n"
        "                  for chrome://tracing or ui.perfetto.dev\n"
        "  --progress      rate-limited live progress on stderr\n"
        "  --progress-json FILE  streamed JSONL progress events\n"
        "                  ('-' = stderr)\n"
        "  --help          this text\n";
    std::exit(rc);
}

} // namespace

int
main(int argc, char **argv)
{
    // Worker mode (processes backend self-exec) never returns.
    dist::maybeWorkerMain(argc, argv);

    std::string specPath;
    bool reportOnly = false, dumpSpec = false, check = false;
    bool verbose = false;
    bool backendOverride = false;
    ExecutionPolicy::Backend backend = ExecutionPolicy::Backend::ThreadPool;
    int threadsOverride = -1, processesOverride = -1;
    int maxRespawnsOverride = -1, unitTimeoutOverride = -1;
    int maxAttemptsOverride = -1;
    std::string metricsPath, tracePath, progressJsonPath;
    bool progressStderr = false;

    auto value = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            fatal("option '%s' needs a value", argv[i]);
        return argv[++i];
    };
    auto parseUnsigned = [](const std::string &what, const std::string &s) {
        unsigned v = 0;
        if (!env::parseUnsigned(s.c_str(), v))
            fatal("%s: '%s' is not a number", what.c_str(), s.c_str());
        return v;
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--backend") {
            std::string b = value(i);
            if (!parseBackend(b, backend))
                fatal("--backend: unknown backend '%s'", b.c_str());
            backendOverride = true;
        } else if (arg == "--threads")
            threadsOverride = int(parseUnsigned("--threads", value(i)));
        else if (arg == "--processes") {
            processesOverride = int(parseUnsigned("--processes", value(i)));
            if (processesOverride == 0)
                fatal("--processes must be >= 1");
        }
        else if (arg == "--max-respawns")
            maxRespawnsOverride =
                int(parseUnsigned("--max-respawns", value(i)));
        else if (arg == "--unit-timeout-ms")
            unitTimeoutOverride =
                int(parseUnsigned("--unit-timeout-ms", value(i)));
        else if (arg == "--max-unit-attempts") {
            maxAttemptsOverride =
                int(parseUnsigned("--max-unit-attempts", value(i)));
            if (maxAttemptsOverride == 0)
                fatal("--max-unit-attempts must be >= 1");
        }
        else if (arg == "--simd") {
            std::string p = value(i);
            simd::Path path{};
            bool isAuto = false;
            if (!simd::parsePath(p, path, isAuto))
                fatal("--simd: '%s' is not scalar|sse2|avx2|avx512|auto",
                      p.c_str());
            if (isAuto) {
                simd::setActivePathAuto();
            } else {
                std::string err = simd::setActivePath(path);
                if (!err.empty())
                    fatal("--simd: %s", err.c_str());
            }
            // Self-exec'd workers of the processes backend re-resolve
            // from the environment, so the pin must outlive this parse.
            ::setenv("VMMX_SIMD", p.c_str(), 1);
        }
        else if (arg == "--report-only")
            reportOnly = true;
        else if (arg == "--dump-spec")
            dumpSpec = true;
        else if (arg == "--check")
            check = true;
        else if (arg == "--verbose")
            verbose = true;
        else if (arg == "--metrics-json")
            metricsPath = value(i);
        else if (arg == "--trace-events")
            tracePath = value(i);
        else if (arg == "--progress")
            progressStderr = true;
        else if (arg == "--progress-json")
            progressJsonPath = value(i);
        else if (arg == "--help")
            usage(0);
        else if (!arg.empty() && arg[0] == '-')
            usage(2);
        else if (specPath.empty())
            specPath = arg;
        else
            usage(2);
    }
    if (specPath.empty())
        usage(2);
    setQuiet(!verbose);

    Study study = Study::fromFile(specPath);
    StudySpec &spec = study.spec();
    if (backendOverride)
        spec.exec.backend = backend;
    if (threadsOverride >= 0)
        spec.exec.threads = unsigned(threadsOverride);
    if (processesOverride > 0)
        spec.exec.processes = unsigned(processesOverride);
    if (maxRespawnsOverride >= 0)
        spec.exec.maxRespawns = unsigned(maxRespawnsOverride);
    if (unitTimeoutOverride >= 0)
        spec.exec.unitTimeoutMs = u64(unitTimeoutOverride);
    if (maxAttemptsOverride > 0)
        spec.exec.maxUnitAttempts = unsigned(maxAttemptsOverride);
    spec.exec.execPath = selfPath(argv[0]);

    if (dumpSpec) {
        std::cout << study.specText();
        return 0;
    }

    // The spec's budgets supersede whatever the environment set on the
    // process-wide repository (the [exec] section is the declarative
    // home of those knobs; the VMMX_* variables are only its defaults).
    TraceRepository &repo = spec.exec.repository();
    repo.setRawBudget(spec.exec.rawBudget);
    repo.setDecodedBudget(spec.exec.decodedBudget);

    auto points = study.points();
    if (points.empty())
        fatal("%s: empty grid (no kernels or apps)", specPath.c_str());

    // Observability wiring; purely observational (results bit-identical
    // either way).  The processes backend forwards the flag to every
    // worker in the Setup frame.
    if (!metricsPath.empty() || !tracePath.empty())
        telemetry::setEnabled(true);
    std::FILE *progressFile = nullptr;
    if (!progressJsonPath.empty()) {
        if (progressJsonPath != "-") {
            progressFile = std::fopen(progressJsonPath.c_str(), "w");
            if (!progressFile)
                fatal("cannot open '%s'", progressJsonPath.c_str());
        }
        telemetry::setProgress(telemetry::ProgressMode::Jsonl,
                               progressFile);
    } else if (progressStderr) {
        telemetry::setProgress(telemetry::ProgressMode::Stderr);
    }
    telemetry::Tracer::instance().setProcessName(u64(::getpid()),
                                                 "driver");
    dist::DistStats distStats;
    bool processesBackend =
        spec.exec.backend == ExecutionPolicy::Backend::Process;
    if (processesBackend && !spec.exec.distStats)
        spec.exec.distStats = &distStats;

    if (!reportOnly) {
        std::cout << (spec.title.empty() ? specPath : spec.title) << "\n"
                  << points.size() << " grid points via the "
                  << executorFor(spec.exec.backend).name()
                  << " backend ("
                  << (spec.exec.batch ? "batched trace groups"
                                      : "per-point jobs")
                  << ", decoded tier "
                  << (spec.exec.decoded ? "on" : "off") << ")\n\n";
    }

    auto start = std::chrono::steady_clock::now();
    auto results = study.run();
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    study.writeReport(std::cout, results);

    if (!reportOnly) {
        std::cout << "\nstudy: " << results.size() << " points in "
                  << TextTable::num(seconds) << " s ("
                  << TextTable::num(seconds > 0
                                        ? double(results.size()) / seconds
                                        : 0.0)
                  << " points/s)\n";
    }

    if (!metricsPath.empty()) {
        // The "repo" section: worker-fleet tier aggregate for the
        // processes backend, the in-process repository otherwise.
        if (processesBackend)
            dist::publishMetrics(*spec.exec.distStats);
        else
            repo.publishMetrics();
        std::ofstream out(metricsPath);
        if (!out)
            fatal("cannot open '%s'", metricsPath.c_str());
        telemetry::Registry::instance().dumpJson(out);
        if (!reportOnly)
            std::cout << "study: metrics written to " << metricsPath
                      << '\n';
    }
    if (!tracePath.empty()) {
        std::ofstream out(tracePath);
        if (!out)
            fatal("cannot open '%s'", tracePath.c_str());
        telemetry::Tracer::instance().writeTraceEvents(out);
        if (!reportOnly)
            std::cout << "study: trace events written to " << tracePath
                      << '\n';
    }
    if (progressFile)
        std::fclose(progressFile);

    if (check) {
        ExecutionPolicy serial = spec.exec;
        serial.backend = ExecutionPolicy::Backend::Serial;
        auto expect = runPoints(points, serial);
        size_t mismatches = 0;
        for (size_t i = 0; i < expect.size(); ++i) {
            if (!results[i].sameRun(expect[i])) {
                std::cout << "MISMATCH at " << expect[i].point.label()
                          << '\n';
                ++mismatches;
            }
        }
        std::cout << "check vs serial executor: "
                  << (mismatches ? "FAIL" : "bit-identical") << '\n';
        if (mismatches)
            return 1;
    }
    return 0;
}
